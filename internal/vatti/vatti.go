// Package vatti implements the scanbeam plane-sweep clipping algorithm the
// paper parallelizes (Vatti 1992, the algorithm inside the GPC library the
// authors used for sequential clipping). The plane is swept bottom-to-top
// through scanbeams — the horizontal strips between consecutive event
// y-coordinates (edge endpoints and edge intersections, §III-B). Inside a
// scanbeam no two active edges cross, so the active edge list ordered by x
// alternates left/right bounds (Lemma 1); running even-odd parity over the
// list classifies each strip of the beam as inside or outside each input
// polygon (Lemmas 2–3), and the strips selected by the clipping operation
// are emitted as trapezoids. Adjacent beams' trapezoids are merged by
// cancelling the shared horizontal caps (the paper's virtual vertices k')
// and stitching the remaining boundary into rings (the paper's Step 4 /
// Fig. 6 merge).
//
// This is the sequential reference engine; package core parallelizes the
// per-beam work (Algorithm 1) and the slab decomposition (Algorithm 2).
package vatti

import (
	"math"
	"sort"

	"polyclip/internal/arrange"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/ringstitch"
	"polyclip/internal/scanbeam"
	"polyclip/internal/segtree"
)

// Op aliases the canonical operation type so all engines share one
// vocabulary (see internal/engine).
type Op = engine.Op

// Re-exported operations.
const (
	Intersection = engine.Intersection
	Union        = engine.Union
	Difference   = engine.Difference
	Xor          = engine.Xor
)

// Trapezoid aliases the canonical scanbeam-piece type (see internal/engine).
type Trapezoid = engine.Trapezoid

// Clip computes `subject op clip` with the sequential scanbeam sweep.
func Clip(subject, clip geom.Polygon, op Op) geom.Polygon {
	return Assemble(Trapezoids(subject, clip, op))
}

// ClipRule computes `subject op clip` under the given fill rule with the
// sequential scanbeam sweep.
func ClipRule(subject, clip geom.Polygon, op Op, rule engine.FillRule) geom.Polygon {
	return Assemble(TrapezoidsRule(subject, clip, op, rule))
}

// ClipRuleResolved is ClipRule for operands already put through the joint
// arrangement resolution (arrange.ResolvePair / ResolvePairWinding for the
// rule). The batch overlay's arrangement cache calls it to reuse resolved
// operands across clips; the sweep runs directly on the given geometry.
func ClipRuleResolved(subject, clip geom.Polygon, op Op, rule engine.FillRule) geom.Polygon {
	return Assemble(trapezoidsRule(subject, clip, op, rule, resolveSkip))
}

// ClipRulePrepared is ClipRule for a prepared subject (engine.Options.
// Prepared): the subject is promised self-resolved — internal/prepared's
// canonicalization — while clip is an arbitrary window polygon. The joint
// resolution still runs, but skips every subject↔subject candidate pair
// (arrange.ResolvePairPrepared), so a big prepared layer clipped against a
// 4-edge tile rectangle does not re-pay its own pre-scan on every tile.
func ClipRulePrepared(subject, clip geom.Polygon, op Op, rule engine.FillRule) geom.Polygon {
	return Assemble(trapezoidsRule(subject, clip, op, rule, resolvePrepared))
}

// Trapezoids computes the even-odd trapezoid decomposition of
// `subject op clip` — the raw per-scanbeam output of the sweep, before
// merging (GPC's tristrip analogue).
func Trapezoids(subject, clip geom.Polygon, op Op) []Trapezoid {
	return TrapezoidsRule(subject, clip, op, engine.EvenOdd)
}

// TrapezoidsRule is Trapezoids under an explicit fill rule: the sweep walks
// signed winding counts, so EvenOdd, NonZero, Positive and Negative all run
// through the same beam schedule.
//
// Horizontal input edges are dropped outright rather than perturbed: the
// winding of any scanline strictly inside a beam is unaffected by edges
// lying on beam boundaries, and the boundary pieces they contribute are
// regenerated exactly as trapezoid caps. This sidesteps the paper's §III-C
// perturbation without changing the result.
func TrapezoidsRule(subject, clip geom.Polygon, op Op, rule engine.FillRule) []Trapezoid {
	return trapezoidsRule(subject, clip, op, rule, resolveFull)
}

// resolveMode selects how much arrangement resolution trapezoidsRule runs
// before the sweep, mirroring the engine.Options.PreResolved/Prepared seam.
type resolveMode uint8

const (
	resolveFull     resolveMode = iota // full joint resolution
	resolveSkip                        // pair already jointly resolved
	resolvePrepared                    // subject self-resolved; skip its self pairs
)

func trapezoidsRule(subject, clip geom.Polygon, op Op, rule engine.FillRule, mode resolveMode) []Trapezoid {
	subject = dropDegenerate(subject)
	clip = dropDegenerate(clip)

	// Pre-resolve the arrangement: every crossing or overlap between any
	// two edges — within an operand or across them — becomes a shared
	// welded vertex. Scheduling intersection ys on unsplit edges is not
	// enough: a near-collinear crossing's computed y can land in the wrong
	// beam, leaving two active edges crossed inside a beam and the emitted
	// trapezoid corners inverted. Under EvenOdd, self-intersecting operands
	// are additionally rewritten as simple even-odd rings; the winding rules
	// keep the split rings directed as given, because the signed-count walk
	// needs the original winding multiplicities. Callers that already
	// resolved the pair (the arrangement cache) skip the pass; prepared
	// subjects (internal/prepared) skip only their own self pairs.
	switch mode {
	case resolveFull:
		if rule == engine.EvenOdd {
			subject, clip = arrange.ResolvePair(subject, clip)
		} else {
			subject, clip = arrange.ResolvePairWinding(subject, clip)
		}
	case resolvePrepared:
		if rule == engine.EvenOdd {
			subject, clip = arrange.ResolvePairPrepared(subject, clip)
		} else {
			subject, clip = arrange.ResolvePairPreparedWinding(subject, clip)
		}
	}

	edges := scanbeam.CollectEdges(subject, clip)
	if len(edges) == 0 {
		return nil
	}

	// Event schedule: endpoint ys suffice — after resolution no two edges
	// cross strictly inside any beam.
	ys := make([]float64, 0, 2*len(edges))
	for _, ae := range edges {
		ys = append(ys, ae.Seg.A.Y, ae.Seg.B.Y)
	}
	ys = segtree.Dedup(ys)
	if len(ys) < 2 {
		return nil
	}

	// Sweep schedule and per-beam winding walk both come from the shared
	// scanbeam substrate; the sweep is sequential, so one stack scratch
	// serves every beam with zero steady-state allocation.
	sweep := scanbeam.NewSweep(ys, len(edges), func(i int32) (float64, float64) {
		return edges[i].Seg.A.Y, edges[i].Seg.B.Y
	})
	edgeAt := func(id int32) (geom.Segment, uint8, int8) {
		e := &edges[id]
		return e.Seg, e.Owner, e.Delta
	}
	var scratch scanbeam.Scratch
	var tzs []Trapezoid
	sweep.ForEachBeam(func(_ int, yb, yt float64, active []int32) {
		if len(active) >= 2 {
			scanbeam.BeamTrapezoids(&scratch, active, yb, yt, op, rule, edgeAt, &tzs)
		}
	})
	return tzs
}

// Assemble merges a trapezoid decomposition into polygons: the shared
// horizontal caps between vertically adjacent trapezoids cancel (after
// splitting caps at each other's endpoints) and the remaining directed
// boundary stitches into rings. This is the merge phase of the paper's
// Algorithm 1 (Fig. 6), in its flat single-pass form.
func Assemble(tzs []Trapezoid) geom.Polygon {
	if len(tzs) == 0 {
		return nil
	}
	// Corners of adjacent trapezoids that represent the same arrangement
	// vertex can differ by an ulp when computed through different edges
	// (e.g. the two edges of a crossing). Cluster near-identical corners
	// onto shared representatives so the edge graph balances exactly.
	tzs = snapCorners(tzs)
	// Cap intervals per boundary y: +1 for bottom caps (interior above),
	// -1 for top caps (interior below).
	type capIv struct {
		x0, x1 float64
		dir    int
	}
	caps := make(map[float64][]capIv, 64)
	var sides []ringstitch.Edge
	for _, tz := range tzs {
		if tz.R1.X > tz.L1.X {
			caps[tz.L1.Y] = append(caps[tz.L1.Y], capIv{tz.L1.X, tz.R1.X, +1})
		}
		if tz.R2.X > tz.L2.X {
			caps[tz.L2.Y] = append(caps[tz.L2.Y], capIv{tz.L2.X, tz.R2.X, -1})
		}
		// Right side up, left side down (interior on the left).
		if tz.R1 != tz.R2 {
			sides = append(sides, ringstitch.Edge{From: tz.R1, To: tz.R2})
		}
		if tz.L1 != tz.L2 {
			sides = append(sides, ringstitch.Edge{From: tz.L2, To: tz.L1})
		}
	}

	edges := ringstitch.CancelOpposites(sides)

	// Per boundary: net coverage sweep over the interval endpoints, in
	// ascending y — the caps map's iteration order is randomized per
	// process, and the emission order below decides where Stitch starts
	// each output ring, so iterating the map directly would rotate rings
	// differently on every run. The endpoint and coverage buffers are
	// reused across boundaries.
	capYs := make([]float64, 0, len(caps))
	for y := range caps {
		capYs = append(capYs, y)
	}
	sort.Float64s(capYs)
	var xs []float64
	var net []int
	for _, y := range capYs {
		ivs := caps[y]
		xs = xs[:0]
		for _, iv := range ivs {
			xs = append(xs, iv.x0, iv.x1)
		}
		xs = segtree.Dedup(xs)
		if cap(net) < len(xs)-1 {
			net = make([]int, len(xs)-1)
		}
		net = net[:len(xs)-1]
		for i := range net {
			net[i] = 0
		}
		for _, iv := range ivs {
			a := sort.SearchFloat64s(xs, iv.x0)
			b := sort.SearchFloat64s(xs, iv.x1)
			for i := a; i < b; i++ {
				net[i] += iv.dir
			}
		}
		for i, nv := range net {
			a := geom.Point{X: xs[i], Y: y}
			b := geom.Point{X: xs[i+1], Y: y}
			switch {
			case nv > 0: // interior above only: boundary traversed +x
				edges = append(edges, ringstitch.Edge{From: a, To: b})
			case nv < 0: // interior below only: boundary traversed -x
				edges = append(edges, ringstitch.Edge{From: b, To: a})
			}
		}
	}
	return ringstitch.Stitch(edges)
}

// snapCorners welds trapezoid corners that represent the same arrangement
// vertex by quantizing every coordinate onto a power-of-two grid at
// geom.RelEps of the data extent. Quantization is a pure function of the
// coordinate value, so — unlike greedy nearest-neighbour clustering, whose
// groups depend on scan order and can weld two corners while leaving a
// third, equally close one apart — corners that must cancel downstream
// always land on the identical representative. A power-of-two step keeps
// the grid exact on binary-representable inputs (integers, halves, ...).
func snapCorners(tzs []Trapezoid) []Trapezoid {
	box := geom.EmptyBBox()
	for _, tz := range tzs {
		box.Extend(tz.L1)
		box.Extend(tz.R1)
		box.Extend(tz.L2)
		box.Extend(tz.R2)
	}
	scale := math.Max(box.Width(), box.Height())
	scale = math.Max(scale, math.Max(math.Abs(box.MaxX), math.Abs(box.MaxY)))
	scale = math.Max(scale, math.Max(math.Abs(box.MinX), math.Abs(box.MinY)))
	if scale == 0 || math.IsInf(scale, 0) {
		return tzs
	}
	eps := math.Ldexp(1, int(math.Ceil(math.Log2(scale*geom.RelEps))))
	q := func(p geom.Point) geom.Point {
		return geom.Point{X: math.Round(p.X/eps) * eps, Y: math.Round(p.Y/eps) * eps}
	}
	out := make([]Trapezoid, len(tzs))
	for i, tz := range tzs {
		out[i] = Trapezoid{L1: q(tz.L1), R1: q(tz.R1), L2: q(tz.L2), R2: q(tz.R2)}
	}
	return out
}

func dropDegenerate(p geom.Polygon) geom.Polygon {
	var out geom.Polygon
	for _, r := range p {
		if len(r) >= 3 {
			out = append(out, r)
		}
	}
	return out
}

// TriStrip is a triangle strip: vertices v0 v1 v2 ... where every
// consecutive triple forms a triangle (GPC's tristrip output format for
// rendering pipelines).
type TriStrip []geom.Point

// Area returns the total area of the strip's triangles.
func (ts TriStrip) Area() float64 {
	var sum float64
	for i := 0; i+2 < len(ts); i++ {
		sum += math.Abs(ts[i+1].Sub(ts[i]).Cross(ts[i+2].Sub(ts[i]))) / 2
	}
	return sum
}

// TriStrips converts a trapezoid decomposition into triangle strips, one
// per trapezoid: (L1, R1, L2, R2), degenerating naturally for triangles.
// Together with Trapezoids this reproduces GPC's polygon-to-tristrip
// conversion: vatti.TriStrips(vatti.Trapezoids(a, b, op)).
func TriStrips(tzs []Trapezoid) []TriStrip {
	out := make([]TriStrip, 0, len(tzs))
	for _, tz := range tzs {
		strip := TriStrip{tz.L1, tz.R1, tz.L2, tz.R2}
		// Drop duplicated corners (triangle cases).
		dedup := strip[:0]
		for _, p := range strip {
			found := false
			for _, q := range dedup {
				if p == q {
					found = true
				}
			}
			if !found {
				dedup = append(dedup, p)
			}
		}
		if len(dedup) >= 3 {
			out = append(out, dedup)
		}
	}
	return out
}
