// Command clipd serves the clipping library over HTTP/JSON: WKT or GeoJSON
// operands in, GeoJSON out. It is a thin main around internal/serve, which
// owns the batching, admission control, degraded-mode routing, deadline
// budgets and per-request metrics (see DESIGN.md row for internal/serve).
//
// Usage:
//
//	clipd -addr :8080
//	clipd -addr :8080 -batch 32 -max-wait 1ms -queue 512 -timeout 2s
//
// Endpoints:
//
//	POST /clip         {"subject": <wkt-string|geojson>, "clip": ..., "op": "intersection|union|difference|xor",
//	                    "rule": "evenodd|nonzero", "algorithm": "overlay|slabs|scanbeam|sequential"}
//	GET  /healthz      liveness + admission mode
//	GET  /statz        aggregate counters (JSON)
//	GET  /metrics.csv  per-request metrics window (CSV)
//
// Overloaded requests are shed with 503 + Retry-After; overflow below the
// shedding threshold is served single-threaded through the coarse/sequential
// tail of the fallback chain and marked "degraded" in the response.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polyclip/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	batch := flag.Int("batch", 0, "max requests coalesced per flush (0 = default 16)")
	maxWait := flag.Duration("max-wait", 0, "max wait for a batch to fill (0 = default 2ms)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 256)")
	maxConc := flag.Int("max-concurrent", 0, "max clips in flight (0 = default 2*GOMAXPROCS)")
	degraded := flag.Int("degraded-slots", 0, "inline slots for overflow traffic (0 = default 2)")
	hold := flag.Duration("degraded-hold", 0, "degraded-mode hysteresis (0 = default 1s)")
	timeout := flag.Duration("timeout", 0, "per-request deadline budget (0 = default 5s, negative disables)")
	retries := flag.Int("retries", 0, "jittered-backoff retries for recoverable errors (0 = default 2)")
	threads := flag.Int("threads", 0, "per-clip parallelism (0 = library default)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 1MiB)")
	seed := flag.Int64("seed", 0, "retry-jitter seed (0 = from clock)")
	chaos := flag.Duration("chaos", 0, "arm a cycling injected fault every interval (benchmark/chaos mode only; 0 = off)")
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		BatchSize:           *batch,
		MaxWait:             *maxWait,
		QueueDepth:          *queue,
		MaxConcurrent:       *maxConc,
		DegradedConcurrency: *degraded,
		DegradedHold:        *hold,
		RequestTimeout:      *timeout,
		MaxRetries:          *retries,
		Threads:             *threads,
		MaxBodyBytes:        *maxBody,
		Seed:                *seed,
	})
	if *chaos > 0 {
		fmt.Fprintf(os.Stderr, "clipd: CHAOS MODE — injecting a fault every %v\n", *chaos)
		stop := serve.FaultCycle(*chaos)
		defer stop()
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful drain on SIGINT/SIGTERM: stop admitting (everything new is a
	// 503), let in-flight clips finish, then stop the listener.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "clipd: draining")
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "clipd: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "clipd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "clipd: stopped; final %s\n", srv.Statz())
}
