// Package gh implements the Greiner–Hormann polygon clipping algorithm
// (Greiner & Hormann 1998), which the paper uses for the rectangle-clipping
// steps 4–5 of its multi-threaded Algorithm 2 because it is "faster than GPC
// for rectangular clipping".
//
// The algorithm builds doubly linked vertex lists for the subject and clip
// contours, inserts every pairwise edge intersection into both lists (sorted
// by the parametric position along each edge), marks each intersection as an
// entry or exit with respect to the other polygon, and traces result
// contours by switching lists at each intersection. It supports
// intersection, union and difference of simple (non-self-intersecting)
// polygons whose boundaries cross properly; degenerate configurations
// (grazing contacts, shared edges) are outside its contract — exactly the
// limitation the paper notes for the clipping literature it improves on.
package gh

import (
	"polyclip/internal/geom"
)

// Op is the clipping operation for this engine.
type Op uint8

// Supported operations.
const (
	Intersection Op = iota
	Union
	Difference
)

// node is a vertex in the circular doubly linked polygon list.
type node struct {
	pt         geom.Point
	next, prev *node
	// intersection bookkeeping
	intersect bool
	entry     bool
	visited   bool
	neighbor  *node
	alpha     float64 // parametric position along the edge it subdivides
}

// buildList turns a ring into a circular doubly linked list.
func buildList(r geom.Ring) *node {
	var first, last *node
	for _, p := range r {
		n := &node{pt: p}
		if first == nil {
			first = n
			last = n
			n.next = n
			n.prev = n
			continue
		}
		n.prev = last
		n.next = first
		last.next = n
		first.prev = n
		last = n
	}
	return first
}

// insertAfter inserts in between a and the next non-intersection vertex,
// keeping intersections sorted by alpha.
func insertSorted(a *node, in *node) {
	p := a
	for p.next.intersect && p.next.alpha < in.alpha {
		p = p.next
	}
	in.next = p.next
	in.prev = p
	p.next.prev = in
	p.next = in
}

// Clip computes `subject op clip` for two simple rings in general position.
// Returns the result contours. When the boundaries do not intersect, the
// containment cases are resolved with point-in-polygon tests.
func Clip(subject, clip geom.Ring, op Op) geom.Polygon {
	if len(subject) < 3 || len(clip) < 3 {
		switch op {
		case Intersection:
			return nil
		case Union:
			out := geom.Polygon{}
			if len(subject) >= 3 {
				out = append(out, subject.Clone())
			}
			if len(clip) >= 3 {
				out = append(out, clip.Clone())
			}
			if len(out) == 0 {
				return nil
			}
			return out
		default:
			if len(subject) >= 3 {
				return geom.Polygon{subject.Clone()}
			}
			return nil
		}
	}

	sList := buildList(subject)
	cList := buildList(clip)

	// Phase 1: find and insert intersections into both lists.
	found := insertIntersections(sList, cList, len(subject), len(clip))

	if found == 0 {
		return noIntersectionCase(subject, clip, op)
	}

	// Phase 2: mark entry/exit. For the subject list, status alternates
	// starting from whether the first vertex is inside the clip polygon;
	// union/difference flip the initial status per Greiner–Hormann's table.
	sInside := geom.Polygon{clip}.ContainsPoint(sList.pt)
	cInside := geom.Polygon{subject}.ContainsPoint(cList.pt)
	sEntry := !sInside
	cEntry := !cInside
	switch op {
	case Union:
		sEntry = !sEntry
		cEntry = !cEntry
	case Difference:
		sEntry = !sEntry
	}
	markEntryExit(sList, sEntry)
	markEntryExit(cList, cEntry)

	// Phase 3: trace result contours.
	var result geom.Polygon
	for {
		start := firstUnvisited(sList)
		if start == nil {
			break
		}
		var ring geom.Ring
		cur := start
		for {
			cur.visited = true
			if cur.neighbor != nil {
				cur.neighbor.visited = true
			}
			ring = append(ring, cur.pt)
			if cur.entry {
				for {
					cur = cur.next
					if cur.intersect {
						break
					}
					ring = append(ring, cur.pt)
				}
			} else {
				for {
					cur = cur.prev
					if cur.intersect {
						break
					}
					ring = append(ring, cur.pt)
				}
			}
			cur = cur.neighbor
			if cur.visited {
				break
			}
		}
		if len(ring) >= 3 {
			result = append(result, dedupRing(ring))
		}
	}
	return result
}

// insertIntersections finds all proper edge crossings and links them into
// both lists; returns the number inserted.
func insertIntersections(sList, cList *node, ns, nc int) int {
	found := 0
	sv := sList
	for i := 0; i < ns; i++ {
		sNext := nextVertex(sv)
		cv := cList
		for j := 0; j < nc; j++ {
			cNext := nextVertex(cv)
			segS := geom.Segment{A: sv.pt, B: sNext.pt}
			segC := geom.Segment{A: cv.pt, B: cNext.pt}
			if geom.SegmentsCross(segS, segC) {
				kind, p, _ := geom.SegIntersection(segS, segC)
				if kind == geom.Crossing {
					aS := alphaOf(segS, p)
					aC := alphaOf(segC, p)
					inS := &node{pt: p, intersect: true, alpha: aS}
					inC := &node{pt: p, intersect: true, alpha: aC}
					inS.neighbor = inC
					inC.neighbor = inS
					insertSorted(sv, inS)
					insertSorted(cv, inC)
					found++
				}
			}
			cv = cNext
		}
		sv = sNext
	}
	return found
}

// nextVertex returns the next original (non-intersection) vertex.
func nextVertex(n *node) *node {
	p := n.next
	for p.intersect {
		p = p.next
	}
	return p
}

func alphaOf(s geom.Segment, p geom.Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return 0
	}
	return p.Sub(s.A).Dot(d) / l2
}

// markEntryExit alternates the entry flag over the intersections of a list.
func markEntryExit(list *node, entry bool) {
	n := list
	for {
		if n.intersect {
			n.entry = entry
			entry = !entry
			n.visited = false
		}
		n = n.next
		if n == list {
			break
		}
	}
}

func firstUnvisited(list *node) *node {
	n := list
	for {
		if n.intersect && !n.visited {
			return n
		}
		n = n.next
		if n == list {
			return nil
		}
	}
}

func dedupRing(r geom.Ring) geom.Ring {
	out := r[:0]
	for i, p := range r {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	if len(out) > 1 && out[0] == out[len(out)-1] {
		out = out[:len(out)-1]
	}
	return out
}

// noIntersectionCase resolves operations when boundaries do not cross.
func noIntersectionCase(subject, clip geom.Ring, op Op) geom.Polygon {
	sInC := geom.Polygon{clip}.ContainsPoint(subject[0])
	cInS := geom.Polygon{subject}.ContainsPoint(clip[0])
	switch op {
	case Intersection:
		if sInC {
			return geom.Polygon{subject.Clone()}
		}
		if cInS {
			return geom.Polygon{clip.Clone()}
		}
		return nil
	case Union:
		if sInC {
			return geom.Polygon{clip.Clone()}
		}
		if cInS {
			return geom.Polygon{subject.Clone()}
		}
		return geom.Polygon{subject.Clone(), clip.Clone()}
	default: // Difference
		if sInC {
			return nil
		}
		if cInS {
			// subject with clip as hole
			hole := clip.Clone()
			hole.Reverse()
			return geom.Polygon{subject.Clone(), hole}
		}
		return geom.Polygon{subject.Clone()}
	}
}
