// Command datagen synthesizes the paper's evaluation datasets and writes
// them as WKT, one feature per line.
//
// Usage:
//
//	datagen -dataset ne_10m_urban_areas -scale 0.01 -o urban.wkt
//	datagen -pair 50000 -o pair.wkt         # §V-A synthetic subject+clip
//	datagen -list                           # show Table III descriptors
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"polyclip/internal/data"
	"polyclip/internal/wkt"
)

func main() {
	dataset := flag.String("dataset", "", "Table III dataset name to synthesize")
	scale := flag.Float64("scale", 0.01, "dataset scale (1.0 = full paper size)")
	pair := flag.Int("pair", 0, "emit a synthetic subject/clip pair with this many edges each")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("o", "-", "output file (default stdout)")
	list := flag.Bool("list", false, "list the Table III descriptors")
	flag.Parse()

	if *list {
		fmt.Println("#  Name                       Polys    Edges     MeanEdgeLen")
		for i, d := range data.TableIII {
			fmt.Printf("%d  %-25s %8d %9d  %.5f\n", i+1, d.Name, d.Polys, d.Edges, d.MeanEdgeLen)
		}
		return
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch {
	case *pair > 0:
		subject, clip := data.SyntheticPair(*seed, *pair, *pair)
		fmt.Fprintln(bw, wkt.Marshal(subject))
		fmt.Fprintln(bw, wkt.Marshal(clip))
	case *dataset != "":
		d, ok := data.DescriptorByName(*dataset)
		if !ok {
			fatalf("unknown dataset %q (see -list)", *dataset)
		}
		layer := data.Layer(d, *scale, *seed)
		for _, f := range layer {
			fmt.Fprintln(bw, wkt.Marshal(f))
		}
		st := data.Stats(layer)
		fmt.Fprintf(os.Stderr, "%s: %d features, %d edges, mean edge %.5f\n",
			d.Name, st.Polys, st.Edges, st.MeanEdgeLen)
	default:
		fatalf("nothing to do: pass -dataset, -pair or -list")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
