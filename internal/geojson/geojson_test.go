package geojson

import (
	"errors"
	"math"
	"strings"
	"testing"

	"polyclip/internal/geom"
)

func TestRoundTripPolygon(t *testing.T) {
	p := geom.RectPolygon(0, 0, 4, 4)
	raw, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"Polygon"`) {
		t.Errorf("raw = %s", raw)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Area()-16) > 1e-12 {
		t.Errorf("area = %v", got.Area())
	}
}

func TestRoundTripMultiPolygon(t *testing.T) {
	p := geom.Polygon{geom.Rect(0, 0, 1, 1), geom.Rect(3, 3, 5, 5)}
	raw, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"MultiPolygon"`) {
		t.Errorf("raw = %s", raw)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || math.Abs(got.Area()-5) > 1e-12 {
		t.Errorf("got %v", got)
	}
}

func TestPolygonWithHoleNesting(t *testing.T) {
	hole := geom.Rect(1, 1, 2, 2)
	hole.Reverse()
	p := geom.Polygon{geom.Rect(0, 0, 4, 4), hole}
	raw, err := MarshalPolygon(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || math.Abs(got.Area()-15) > 1e-12 {
		t.Errorf("got rings=%d area=%v", len(got), got.Area())
	}
}

func TestFeatureWrapper(t *testing.T) {
	raw := []byte(`{"type":"Feature","properties":{"name":"x"},"geometry":{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,2],[0,0]]]}}`)
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Area()-4) > 1e-12 {
		t.Errorf("area = %v", got.Area())
	}
	// Null geometry feature.
	got, err = Unmarshal([]byte(`{"type":"Feature","geometry":null}`))
	if err != nil || got != nil {
		t.Errorf("null geometry: %v %v", got, err)
	}
}

func TestLayerRoundTrip(t *testing.T) {
	layer := []geom.Polygon{
		geom.RectPolygon(0, 0, 1, 1),
		{geom.Rect(2, 2, 3, 3), geom.Rect(5, 5, 6, 6)},
	}
	raw, err := MarshalLayer(layer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalLayer(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("features = %d", len(got))
	}
	if math.Abs(got[1].Area()-2) > 1e-12 {
		t.Errorf("feature 1 area = %v", got[1].Area())
	}
}

func TestErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(`not json`),
		[]byte(`{"type":"Point","coordinates":[0,0]}`),
		[]byte(`{"type":"Polygon","coordinates":"nope"}`),
		[]byte(`{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[1,1]]}}`),
	}
	for _, raw := range bad {
		if _, err := Unmarshal(raw); err == nil {
			t.Errorf("%s: expected error", raw)
		}
	}
	if _, err := UnmarshalLayer([]byte(`{"type":"Polygon","coordinates":[]}`)); err == nil {
		t.Error("UnmarshalLayer should reject non-collections")
	}
}

func TestDegenerateRingsDropped(t *testing.T) {
	raw := []byte(`{"type":"Polygon","coordinates":[[[0,0],[1,0],[0,0]],[[0,0],[4,0],[4,4],[0,4],[0,0]]]}`)
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || math.Abs(got.Area()-16) > 1e-12 {
		t.Errorf("got %v", got)
	}
}

// TestParseErrorPositions pins the position context of GeoJSON parse
// failures: the clipd 400 bodies echo byte offsets (when the JSON decoder
// knows them) and the offending token back to the client.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		in        string
		minOffset int64  // -1 when the offset is unknowable
		token     string // "" when no token is attributable
		substr    string
	}{
		{"truncated", `{"type":"Polygon","coordinates":[[[0,0],[1,0]`, 1, "", "unexpected end of JSON input"},
		{"junk", `not json at all`, 1, "", "invalid character"},
		{"wrong-shape", `{"type":["Polygon"]}`, 1, "type", "cannot decode array into string"},
		{"unsupported", `{"type":"LineString"}`, -1, "LineString", "unsupported type"},
		{"bad-coords", `{"type":"Polygon","coordinates":"nope"}`, -1, "coordinates", "malformed Polygon coordinates"},
		{"bad-multi", `{"type":"MultiPolygon","coordinates":[[["x"]]]}`, -1, "coordinates", "malformed MultiPolygon coordinates"},
		{"nonfinite", `{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1e999]]]}`, -1, "coordinates", "number 1e999"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unmarshal([]byte(tc.in))
			if err == nil {
				t.Fatalf("expected error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if tc.minOffset >= 0 && pe.Offset < tc.minOffset {
				t.Errorf("offset %d, want >= %d (%v)", pe.Offset, tc.minOffset, err)
			}
			if tc.minOffset < 0 && pe.Offset != -1 {
				t.Errorf("offset %d, want -1 (%v)", pe.Offset, err)
			}
			if pe.Token != tc.token {
				t.Errorf("token %q, want %q (%v)", pe.Token, tc.token, err)
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("message %q does not contain %q", err.Error(), tc.substr)
			}
			if !strings.HasPrefix(err.Error(), "geojson: ") {
				t.Errorf("message %q is missing the geojson: prefix", err.Error())
			}
		})
	}
}

// TestLayerParseErrors pins position context through the layer path.
func TestLayerParseErrors(t *testing.T) {
	var pe *ParseError
	_, err := UnmarshalLayer([]byte(`{"type":"Polygon"}`))
	if !errors.As(err, &pe) || pe.Token != "Polygon" {
		t.Errorf("wrong-type error = %v, want ParseError near \"Polygon\"", err)
	}
	_, err = UnmarshalLayer([]byte(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Polygon","coordinates":"x"}}]}`))
	if !errors.As(err, &pe) || !strings.Contains(err.Error(), "feature 0") {
		t.Errorf("feature error = %v, want ParseError naming feature 0", err)
	}
}
